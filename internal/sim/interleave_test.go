package sim

import (
	"fmt"
	"testing"
)

// interleaveTrace runs a small world of actors whose behavior is scripted
// by the fuzz input: each actor repeatedly holds, parks on a shared event
// or queue, or interrupts another actor, then the driver runs the kernel
// and shuts it down. It returns a textual trace of everything that
// happened, so the fuzzer can assert determinism, and panics (failing the
// fuzz run) if the kernel misbehaves.
func interleaveTrace(script []byte) string {
	e := NewEnv()
	ev := NewEvent(e, "ev")
	q := NewQueue[int](e, "q")
	var trace []string
	emit := func(format, who string, args ...any) {
		trace = append(trace, fmt.Sprintf("%.3f %s "+format, append([]any{e.Now(), who}, args...)...))
	}

	const actors = 4
	procs := make([]*Proc, actors)
	for a := 0; a < actors; a++ {
		a := a
		who := fmt.Sprintf("a%d", a)
		// Each actor consumes the bytes at positions a, a+actors, ...
		var ops []byte
		for i := a; i < len(script); i += actors {
			ops = append(ops, script[i])
		}
		procs[a] = e.Spawn(who, func(p *Proc) {
			for _, op := range ops {
				switch op % 5 {
				case 0: // hold
					d := float64(op%7) + 0.5
					p.Hold(d)
					emit("held %.1f", who, d)
				case 1: // park on the shared event
					err := ev.Wait(p)
					emit("event wait -> %v", who, err)
				case 2: // trigger + reset the shared event
					ev.Trigger(nil)
					ev.Reset()
					emit("trigger", who)
				case 3: // queue traffic: even actors put, odd actors get
					if a%2 == 0 {
						q.Put(int(op))
						emit("put %d", who, op)
					} else {
						v, err := q.Get(p)
						emit("get %d -> %v", who, v, err)
					}
				case 4: // interrupt the next actor if it is parked
					target := procs[(a+1)%actors]
					ok := target.Interrupt(fmt.Errorf("poke from %s", who))
					emit("interrupt a%d -> %v", who, (a+1)%actors, ok)
				}
			}
			emit("done", who)
		})
	}

	bound := 1.0
	if len(script) > 0 {
		bound = float64(script[0]%32) + 1
	}
	stop := e.Run(bound)
	if stop > bound {
		panic(fmt.Sprintf("Run(%v) reported stop time %v past the bound", bound, stop))
	}
	if e.Now() != bound {
		panic(fmt.Sprintf("Run(%v) left the clock at %v", bound, e.Now()))
	}
	emit("run stopped at %.3f live=%d", "driver", stop, e.Live())
	e.Shutdown()
	if e.Live() != 0 {
		panic(fmt.Sprintf("Live = %d after Shutdown", e.Live()))
	}
	if !e.Terminated() {
		panic("Terminated() false after Shutdown")
	}
	out := ""
	for _, line := range trace {
		out += line + "\n"
	}
	return out
}

// FuzzKernelInterleave drives random interleavings of Hold, event waits,
// queue traffic, Interrupt and Shutdown through the kernel. Two properties
// must hold for every input: the kernel survives (no internal panic, clean
// teardown — checked inside interleaveTrace), and the run is deterministic
// (the same script yields a byte-identical trace).
func FuzzKernelInterleave(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{4, 4, 4, 4, 1, 1, 1, 1})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 128, 64, 32})
	f.Add([]byte{3, 3, 3, 3, 2, 1, 0, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		first := interleaveTrace(script)
		second := interleaveTrace(script)
		if first != second {
			t.Fatalf("nondeterministic trace:\n--- first\n%s--- second\n%s", first, second)
		}
	})
}

// TestKernelInterleaveSeeds runs the fuzz seed scripts as a plain unit
// test, so the interleaving property is exercised on every `go test` run
// even without -fuzz.
func TestKernelInterleaveSeeds(t *testing.T) {
	seeds := [][]byte{
		{},
		{0, 1, 2, 3, 4},
		{4, 4, 4, 4, 1, 1, 1, 1},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 128, 64, 32},
		{3, 3, 3, 3, 2, 1, 0, 4, 3, 2, 1, 0},
		{20, 11, 7, 3, 14, 255, 0, 0, 0, 9, 9, 9, 9, 4, 4, 1, 2, 3},
	}
	for i, s := range seeds {
		if a, b := interleaveTrace(s), interleaveTrace(s); a != b {
			t.Fatalf("seed %d nondeterministic:\n--- first\n%s--- second\n%s", i, a, b)
		}
	}
}
