package sim

import "testing"

// Kernel micro-benchmarks: the primitive operations the testbed's hot path
// is built from. Run with `go test ./internal/sim -bench Kernel -benchmem`.

// BenchmarkKernelSchedule measures raw event scheduling and dispatch
// through the calendar queue: timestamps spread over a wide range so the
// events cannot ride the same-time now-queue.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	n := 0
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+float64(i%97)+1, func() { n++ })
	}
	e.RunAll()
	if n != b.N {
		b.Fatalf("dispatched %d events, want %d", n, b.N)
	}
}

// BenchmarkKernelCancel measures schedule-then-cancel churn: every event is
// unscheduled before the dequeue scan reaches it, exercising the lazy
// cancellation path.
func BenchmarkKernelCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	for i := 0; i < b.N; i++ {
		ev := e.schedule(e.now + float64(i%97) + 1)
		ev.kind = evCall
		ev.fn = func() {}
		e.q.unschedule(ev)
		if i%64 == 63 {
			e.RunAll() // reclaim the canceled entries
		}
	}
	e.RunAll()
}

// BenchmarkKernelHoldPingPong measures the full suspend/resume cycle: two
// processes alternate holds, so every hold has a pending earlier event and
// fusion never applies — each iteration is one event plus two coroutine
// switches.
func BenchmarkKernelHoldPingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	each := b.N/2 + 1
	for pi := 0; pi < 2; pi++ {
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < each; i++ {
				p.Hold(1)
			}
		})
	}
	e.RunAll()
}

// BenchmarkKernelHoldFused measures the fused fast path: a single process
// holding with nothing else pending advances the clock in place, with no
// event and no coroutine switch.
func BenchmarkKernelHoldFused(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	e.Run(float64(b.N) + 2)
}

// BenchmarkKernelWake measures the park/wake cycle through an Event: one
// waiter parks, a scheduled callback triggers it, repeat.
func BenchmarkKernelWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	ev := NewEvent(e, "ev")
	e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			e.At(e.Now(), func() { ev.Trigger(nil) })
			_ = ev.Wait(p)
			ev.Reset()
		}
	})
	e.RunAll()
}

// BenchmarkKernelSpawn measures process creation and teardown: spawn,
// start, immediate return.
func BenchmarkKernelSpawn(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	for i := 0; i < b.N; i++ {
		e.Spawn("p", func(p *Proc) {})
		if i%1024 == 1023 {
			e.RunAll() // bound the pending-start backlog
		}
	}
	e.RunAll()
	if e.Live() != 0 {
		b.Fatalf("Live = %d, want 0", e.Live())
	}
}

// BenchmarkShutdownParked measures tearing down an environment with a large
// parked population — the regression case for the old O(n²) min-id rescan
// in Shutdown.
func BenchmarkShutdownParked(b *testing.B) {
	b.ReportAllocs()
	const parked = 10_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEnv()
		q := NewQueue[int](e, "q")
		for j := 0; j < parked; j++ {
			e.Spawn("p", func(p *Proc) { _, _ = q.Get(p) })
		}
		e.Run(1)
		b.StartTimer()
		e.Shutdown()
	}
}
