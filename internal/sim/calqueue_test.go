package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the reference ordering: a plain binary heap over (t, seq),
// mirroring the seed kernel's eventHeap. The calendar queue must produce
// exactly this dequeue sequence.
type refHeap []*event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return eventBefore(h[i], h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// TestCalQueueMatchesHeap drives the calendar queue and a reference heap
// with the same randomized schedule/cancel/pop workload and requires the
// identical (t, seq) dequeue sequence. Timestamps mimic a simulation:
// a moving "now" plus service-time-like increments at several scales, with
// bursts of equal-time events, far-future outliers, and enough churn to
// cross several resize thresholds in both directions.
func TestCalQueueMatchesHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		var q calQueue
		q.init()
		var ref refHeap
		pending := map[int64]*event{} // seq -> queue's copy, for cancels
		var seq int64
		now := 0.0

		push := func(t float64) {
			seq++
			ev := q.alloc()
			ev.t, ev.seq = t, seq
			q.push(ev)
			heap.Push(&ref, &event{t: t, seq: seq})
			pending[seq] = ev
		}
		pop := func() {
			want := heap.Pop(&ref).(*event)
			got := q.pop()
			if got == nil || got.t != want.t || got.seq != want.seq {
				t.Fatalf("seed %d: dequeue mismatch: calqueue %+v, heap t=%v seq=%d",
					seed, got, want.t, want.seq)
			}
			delete(pending, got.seq)
			now = got.t
			q.release(got)
		}

		for step := 0; step < 20000; step++ {
			switch r := rng.Float64(); {
			case r < 0.45 || len(ref) == 0:
				switch b := rng.Float64(); {
				case b < 0.3:
					push(now) // same-time wakeups
				case b < 0.8:
					push(now + rng.Float64()*10)
				case b < 0.95:
					push(now + rng.Float64()*500)
				default:
					push(now + 1e6 + rng.Float64()*1e6) // far-future outlier
				}
			case r < 0.55 && len(pending) > 0:
				// Cancel a random pending event in both structures.
				for s, ev := range pending {
					q.unschedule(ev)
					for i, rev := range ref {
						if rev.seq == s {
							heap.Remove(&ref, i)
							break
						}
					}
					delete(pending, s)
					break
				}
			default:
				pop()
			}
		}
		for len(ref) > 0 {
			pop()
		}
		if got := q.pop(); got != nil {
			t.Fatalf("seed %d: calqueue still has %+v after heap drained", seed, got)
		}
	}
}
