package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

// TestSingleChainSingleCenter: one queueing center, N customers, demand D.
// With no think time the server saturates: X = 1/D for N >= 1.
func TestSingleChainSingleCenter(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing},
		Demands:     [][]float64{{2.0}},
		Populations: []int{3},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 0.5, 1e-12) {
		t.Fatalf("X = %v, want 0.5", sol.Throughput[0])
	}
	if !close(sol.CycleTime[0], 6, 1e-12) {
		t.Fatalf("R = %v, want 6 (N*D)", sol.CycleTime[0])
	}
	if !close(sol.QueueLen[0], 3, 1e-12) {
		t.Fatalf("Q = %v, want 3 (everyone queued)", sol.QueueLen[0])
	}
	if !close(sol.Utilization[0], 1, 1e-12) {
		t.Fatalf("U = %v, want 1", sol.Utilization[0])
	}
}

// TestMachineRepairman: the classic interactive system — one queueing
// center (demand D) plus a delay center (think Z). Closed-form exact MVA
// values for N=2, D=1, Z=1: X = 5/8? Derive by recursion instead:
// N=1: R = D(1+0) = 1, X = 1/(Z+R) = 1/2, Q = X*R = 1/2.
// N=2: R = D(1+1/2) = 3/2, X = 2/(1+3/2) = 4/5, Q = 6/5.
func TestMachineRepairman(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing, Delay},
		Demands:     [][]float64{{1.0}, {1.0}},
		Populations: []int{2},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 0.8, 1e-12) {
		t.Fatalf("X = %v, want 0.8", sol.Throughput[0])
	}
	if !close(sol.QueueLen[0], 1.2, 1e-12) {
		t.Fatalf("Q(cpu) = %v, want 1.2", sol.QueueLen[0])
	}
	if !close(sol.Utilization[0], 0.8, 1e-12) {
		t.Fatalf("U = %v, want 0.8", sol.Utilization[0])
	}
}

// TestTwoCenterBalanced: two identical queueing centers, one chain.
// N=1: R = 2D, X = 1/(2D). N=2: each center sees Q=1/2: R_c = D(3/2),
// X = 2/(3D). N=3: Q_c(2) = X*R_c = (2/3D)*(3D/2)/2 = 1/2 each... compute
// via recursion: Q_c(2) = 0.75 each? Let D=1.
// n=1: R=2, X=0.5, Qc=0.25 each... no: Qc = X*Rc = 0.5*1 = 0.5.
// Hmm: Rc=1 each, R=2, X=1/2, Qc=1/2 each.
// n=2: Rc=1*(1+0.5)=1.5, R=3, X=2/3, Qc=1.
// n=3: Rc=1*(1+1)=2, R=4, X=3/4, Qc=1.5.
func TestTwoCenterBalanced(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing, Queueing},
		Demands:     [][]float64{{1}, {1}},
		Populations: []int{3},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 0.75, 1e-12) {
		t.Fatalf("X = %v, want 0.75", sol.Throughput[0])
	}
	if !close(sol.QueueLen[0], 1.5, 1e-12) || !close(sol.QueueLen[1], 1.5, 1e-12) {
		t.Fatalf("Q = %v,%v want 1.5 each", sol.QueueLen[0], sol.QueueLen[1])
	}
}

// TestTwoChains: asymmetric demands; verify against hand recursion on a
// tiny case. Chains A and B, one queueing center, D_A=1, D_B=2, N=(1,1).
// (0,0): Q=0.
// (1,0): R_A=1, X_A=1, Q=1.
// (0,1): R_B=2, X_B=0.5, Q=1.
// (1,1): R_A = 1*(1+Q(0,1)) = 2, X_A = 1/2;
//
//	R_B = 2*(1+Q(1,0)) = 4, X_B = 1/4;
//	Q = 1/2*2 + 1/4*4 = 2.
func TestTwoChains(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing},
		Demands:     [][]float64{{1, 2}},
		Populations: []int{1, 1},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 0.5, 1e-12) {
		t.Fatalf("X_A = %v, want 0.5", sol.Throughput[0])
	}
	if !close(sol.Throughput[1], 0.25, 1e-12) {
		t.Fatalf("X_B = %v, want 0.25", sol.Throughput[1])
	}
	if !close(sol.QueueLen[0], 2, 1e-12) {
		t.Fatalf("Q = %v, want 2", sol.QueueLen[0])
	}
}

// TestZeroPopulationChain: chains with zero customers contribute nothing.
func TestZeroPopulationChain(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing},
		Demands:     [][]float64{{1, 5}},
		Populations: []int{2, 0},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[1] != 0 {
		t.Fatalf("X of empty chain = %v", sol.Throughput[1])
	}
	// Chain 0 alone saturates the center: X = 1/D = 1.
	if !close(sol.Throughput[0], 1, 1e-12) {
		t.Fatalf("X = %v, want 1", sol.Throughput[0])
	}
}

// TestDelayOnlyNetwork: with only delay centers there is no contention:
// X = N/Z exactly.
func TestDelayOnlyNetwork(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Delay},
		Demands:     [][]float64{{4}},
		Populations: []int{8},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 2, 1e-12) {
		t.Fatalf("X = %v, want 2", sol.Throughput[0])
	}
}

// TestApproxMatchesExactSmall compares Schweitzer-Bard with exact MVA on
// random small networks: the approximation is known to be within a few
// percent on throughput.
func TestApproxMatchesExactSmall(t *testing.T) {
	f := func(d1, d2, d3 uint8, n1, n2 uint8) bool {
		n := &Network{
			Kinds: []CenterKind{Queueing, Queueing, Delay},
			Demands: [][]float64{
				{float64(d1%9) + 1, float64(d2%9) + 1},
				{float64(d2%7) + 1, float64(d3%7) + 1},
				{float64(d3 % 20), float64(d1 % 20)},
			},
			Populations: []int{int(n1%4) + 1, int(n2 % 4)},
		}
		exact, err := SolveExact(n)
		if err != nil {
			return false
		}
		approx, err := SolveApprox(n, 1e-10, 0)
		if err != nil {
			return false
		}
		for k := range exact.Throughput {
			if n.Populations[k] == 0 {
				continue
			}
			if !close(approx.Throughput[k], exact.Throughput[k], 0.10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLittlesLawHolds: for every chain, X_k * CycleTime_k = N_k, and the
// per-center queue lengths sum to the total population.
func TestLittlesLawHolds(t *testing.T) {
	n := &Network{
		Kinds: []CenterKind{Queueing, Queueing, Delay},
		Demands: [][]float64{
			{3, 1, 0.5},
			{1, 4, 2},
			{10, 0, 5},
		},
		Populations: []int{2, 3, 1},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sol.Throughput {
		if !close(sol.Throughput[k]*sol.CycleTime[k], float64(n.Populations[k]), 1e-9) {
			t.Fatalf("chain %d: X*R = %v, want %d", k,
				sol.Throughput[k]*sol.CycleTime[k], n.Populations[k])
		}
	}
	var totQ float64
	for _, q := range sol.QueueLen {
		totQ += q
	}
	if !close(totQ, 6, 1e-9) {
		t.Fatalf("total queue %v, want 6", totQ)
	}
}

// TestUtilizationBelowOne: utilizations of queueing centers never exceed 1.
func TestUtilizationBelowOne(t *testing.T) {
	f := func(d1, d2 uint8, n1, n2 uint8) bool {
		n := &Network{
			Kinds: []CenterKind{Queueing, Queueing},
			Demands: [][]float64{
				{float64(d1%9) + 0.5, float64(d2%9) + 0.5},
				{float64(d2%5) + 0.5, float64(d1%5) + 0.5},
			},
			Populations: []int{int(n1%5) + 1, int(n2%5) + 1},
		}
		sol, err := SolveExact(n)
		if err != nil {
			return false
		}
		for _, u := range sol.Utilization {
			if u > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestThroughputMonotoneInPopulation: adding customers never reduces
// a chain's throughput in a product-form network.
func TestThroughputMonotoneInPopulation(t *testing.T) {
	base := &Network{
		Kinds:       []CenterKind{Queueing, Delay},
		Demands:     [][]float64{{2}, {5}},
		Populations: []int{1},
	}
	var prev float64
	for pop := 1; pop <= 10; pop++ {
		base.Populations[0] = pop
		sol, err := SolveExact(base)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Throughput[0] < prev-1e-12 {
			t.Fatalf("throughput fell at N=%d: %v < %v", pop, sol.Throughput[0], prev)
		}
		prev = sol.Throughput[0]
	}
	// And it must approach the bottleneck bound 1/D = 0.5.
	if prev > 0.5+1e-9 {
		t.Fatalf("throughput %v exceeds bottleneck bound 0.5", prev)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Network{
		{Kinds: nil, Demands: nil, Populations: []int{1}},
		{Kinds: []CenterKind{Queueing}, Demands: [][]float64{}, Populations: []int{1}},
		{Kinds: []CenterKind{Queueing}, Demands: [][]float64{{1, 2}}, Populations: []int{1}},
		{Kinds: []CenterKind{Queueing}, Demands: [][]float64{{-1}}, Populations: []int{1}},
		{Kinds: []CenterKind{Queueing}, Demands: [][]float64{{1}}, Populations: []int{-1}},
		{Kinds: []CenterKind{Queueing}, Demands: [][]float64{{1}}, Populations: []int{}},
	}
	for i, n := range bad {
		if _, err := SolveExact(n); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// A populated chain with zero demand everywhere is an error.
	zero := &Network{
		Kinds:       []CenterKind{Queueing},
		Demands:     [][]float64{{0}},
		Populations: []int{1},
	}
	if _, err := SolveExact(zero); err == nil {
		t.Error("zero-demand chain must fail")
	}
	if _, err := SolveApprox(zero, 0, 0); err == nil {
		t.Error("zero-demand chain must fail in approx")
	}
}

// TestApproxLargePopulation: the approximation handles populations far
// beyond exact MVA's reach and still saturates at the bottleneck.
func TestApproxLargePopulation(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing, Delay},
		Demands:     [][]float64{{1}, {100}},
		Populations: []int{5000},
	}
	sol, err := SolveApprox(n, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Throughput[0], 1.0, 0.01) {
		t.Fatalf("X = %v, want ~1 (bottleneck)", sol.Throughput[0])
	}
}

// TestMultiServerReducesToSingle: a MultiServer center with one server is
// identical to Queueing.
func TestMultiServerReducesToSingle(t *testing.T) {
	q := &Network{
		Kinds:       []CenterKind{Queueing, Delay},
		Demands:     [][]float64{{2}, {3}},
		Populations: []int{4},
	}
	m := &Network{
		Kinds:       []CenterKind{MultiServer, Delay},
		Demands:     [][]float64{{2}, {3}},
		Servers:     []int{1, 0},
		Populations: []int{4},
	}
	sq, err := SolveExact(q)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SolveExact(m)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sq.Throughput[0], sm.Throughput[0], 1e-12) {
		t.Fatalf("single-server MultiServer diverges: %v vs %v", sm.Throughput[0], sq.Throughput[0])
	}
}

// TestMultiServerCapacity: at saturation, m servers sustain m times the
// single-server bottleneck rate.
func TestMultiServerCapacity(t *testing.T) {
	for _, m := range []int{2, 4} {
		n := &Network{
			Kinds:       []CenterKind{MultiServer},
			Demands:     [][]float64{{1}},
			Servers:     []int{m},
			Populations: []int{400},
		}
		sol, err := SolveExact(n)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(m)
		if !close(sol.Throughput[0], want, 0.02) {
			t.Fatalf("m=%d: X=%v, want ~%v", m, sol.Throughput[0], want)
		}
		if sol.Utilization[0] > 1+1e-9 {
			t.Fatalf("m=%d: per-server utilization %v > 1", m, sol.Utilization[0])
		}
	}
}

// TestMultiServerLightLoad: with one customer there is no queueing and the
// residence approaches the plain demand (Seidmann splits it but the sum is
// D at Q=0).
func TestMultiServerLightLoad(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{MultiServer, Delay},
		Demands:     [][]float64{{4}, {100}},
		Servers:     []int{2, 0},
		Populations: []int{1},
	}
	sol, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol.Residence[0][0], 4, 1e-9) {
		t.Fatalf("light-load residence %v, want 4", sol.Residence[0][0])
	}
}

// TestMultiServerApproxAgrees: Schweitzer with multi-server centers stays
// near exact.
func TestMultiServerApproxAgrees(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{MultiServer, Queueing, Delay},
		Demands:     [][]float64{{3, 2}, {1, 4}, {5, 0}},
		Servers:     []int{3, 0, 0},
		Populations: []int{3, 2},
	}
	exact, err := SolveExact(n)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SolveApprox(n, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range exact.Throughput {
		if !close(approx.Throughput[k], exact.Throughput[k], 0.12) {
			t.Fatalf("chain %d: approx %v vs exact %v", k, approx.Throughput[k], exact.Throughput[k])
		}
	}
}

func TestServersValidation(t *testing.T) {
	n := &Network{
		Kinds:       []CenterKind{Queueing},
		Demands:     [][]float64{{1}},
		Servers:     []int{1, 2},
		Populations: []int{1},
	}
	if _, err := SolveExact(n); err == nil {
		t.Fatal("mismatched Servers length must fail")
	}
}
