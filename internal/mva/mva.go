// Package mva solves closed, multi-chain, product-form queueing networks
// by Mean Value Analysis — the solver the paper uses for each Site
// Processing Model ([BASK75] product-form networks, Section 6: "This is
// done using the Mean Value Analysis algorithm for product form networks").
//
// Two algorithms are provided: exact MVA, which recurs over all population
// vectors (exponential in the number of chains but cheap for the paper's
// populations), and the Schweitzer–Bard approximation, a fixed point that
// scales to large populations. Centers are single-server FCFS/PS queueing
// centers or infinite-server delay centers.
package mva

import (
	"fmt"
	"math"
)

// CenterKind distinguishes service center types.
type CenterKind int

const (
	// Queueing is a single-server center (FCFS with class-independent
	// exponential service, or PS, per BCMP).
	Queueing CenterKind = iota
	// Delay is an infinite-server center: no queueing, pure latency.
	Delay
	// MultiServer is an m-server queueing center handled with Seidmann's
	// approximation: the residence is D/m·(1+Q) + D·(m-1)/m — the center
	// behaves like a single server m times faster plus a fixed delay for
	// the rest of the service. Exact for m = 1; within a few percent for
	// the utilizations database models run at. Set the server count in
	// Network.Servers.
	MultiServer
)

// Network describes a closed multi-chain queueing network.
type Network struct {
	// Names labels the centers (for reports); optional.
	Names []string
	// Kinds gives each center's type. len(Kinds) = number of centers.
	Kinds []CenterKind
	// Demands[c][k] is chain k's total service demand at center c per
	// cycle (visit count times per-visit service time).
	Demands [][]float64
	// Servers[c] is the server count for MultiServer centers (ignored for
	// the other kinds; nil means 1 everywhere).
	Servers []int
	// Populations[k] is the number of chain-k customers.
	Populations []int
}

// serversAt returns the server count of center c (>= 1).
func (n *Network) serversAt(c int) int {
	if n.Servers == nil || c >= len(n.Servers) || n.Servers[c] < 1 {
		return 1
	}
	return n.Servers[c]
}

// Validate checks structural consistency.
func (n *Network) Validate() error {
	if len(n.Kinds) == 0 {
		return fmt.Errorf("mva: no centers")
	}
	if len(n.Demands) != len(n.Kinds) {
		return fmt.Errorf("mva: %d demand rows for %d centers", len(n.Demands), len(n.Kinds))
	}
	k := len(n.Populations)
	if k == 0 {
		return fmt.Errorf("mva: no chains")
	}
	for c, row := range n.Demands {
		if len(row) != k {
			return fmt.Errorf("mva: center %d has %d demands for %d chains", c, len(row), k)
		}
		for _, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("mva: center %d has invalid demand %v", c, d)
			}
		}
	}
	for i, p := range n.Populations {
		if p < 0 {
			return fmt.Errorf("mva: chain %d has negative population", i)
		}
	}
	if n.Servers != nil && len(n.Servers) != len(n.Kinds) {
		return fmt.Errorf("mva: %d server counts for %d centers", len(n.Servers), len(n.Kinds))
	}
	for c, kind := range n.Kinds {
		if kind == MultiServer && n.serversAt(c) < 1 {
			return fmt.Errorf("mva: center %d has invalid server count", c)
		}
	}
	return nil
}

// Solution holds per-chain and per-center results at the full population.
type Solution struct {
	// Throughput[k] is chain k's cycle rate X_k.
	Throughput []float64
	// CycleTime[k] is chain k's total residence per cycle, N_k / X_k.
	CycleTime []float64
	// Residence[c][k] is chain k's residence time at center c per cycle.
	Residence [][]float64
	// QueueLen[c] is the mean total population at center c.
	QueueLen []float64
	// Utilization[c] is Σ_k X_k * D_ck — the busy fraction for queueing
	// centers (may exceed 1 only through numerical error).
	Utilization []float64
}

// SolveExact runs the exact multi-chain MVA recursion. Complexity is
// O(centers · chains · Π(N_k+1)); fine for the paper's populations
// (≤ 3^6 states per site).
func SolveExact(n *Network) (*Solution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nc := len(n.Kinds)
	nk := len(n.Populations)

	// Mixed-radix enumeration of population vectors 0..N.
	radix := make([]int, nk)
	total := 1
	for k, p := range n.Populations {
		radix[k] = p + 1
		if total > math.MaxInt32/radix[k] {
			return nil, fmt.Errorf("mva: population state space too large for exact MVA; use SolveApprox")
		}
		total *= radix[k]
	}
	// strides for indexing.
	stride := make([]int, nk)
	s := 1
	for k := 0; k < nk; k++ {
		stride[k] = s
		s *= radix[k]
	}
	// queueLen[idx*nc + c] = mean population of center c at vector idx.
	queueLen := make([]float64, total*nc)

	resid := make([][]float64, nc)
	for c := range resid {
		resid[c] = make([]float64, nk)
	}
	x := make([]float64, nk)

	vec := make([]int, nk)
	for idx := 1; idx < total; idx++ {
		// Decode idx into vec.
		rem := idx
		for k := 0; k < nk; k++ {
			vec[k] = rem % radix[k]
			rem /= radix[k]
		}
		for k := 0; k < nk; k++ {
			if vec[k] == 0 {
				x[k] = 0
				continue
			}
			prev := idx - stride[k] // population with one chain-k customer removed
			var cycle float64
			for c := 0; c < nc; c++ {
				d := n.Demands[c][k]
				if d == 0 {
					resid[c][k] = 0
					continue
				}
				switch n.Kinds[c] {
				case Delay:
					resid[c][k] = d
				case MultiServer:
					m := float64(n.serversAt(c))
					resid[c][k] = d/m*(1+queueLen[prev*nc+c]) + d*(m-1)/m
				default:
					resid[c][k] = d * (1 + queueLen[prev*nc+c])
				}
				cycle += resid[c][k]
			}
			if cycle <= 0 {
				return nil, fmt.Errorf("mva: chain %d has zero total demand", k)
			}
			x[k] = float64(vec[k]) / cycle
		}
		for c := 0; c < nc; c++ {
			var q float64
			for k := 0; k < nk; k++ {
				if vec[k] > 0 {
					q += x[k] * resid[c][k]
				}
			}
			queueLen[idx*nc+c] = q
		}
	}

	return n.finish(queueLen[(total-1)*nc:], x, resid)
}

// finish assembles a Solution from the final-population state.
func (n *Network) finish(finalQ []float64, x []float64, resid [][]float64) (*Solution, error) {
	nc := len(n.Kinds)
	nk := len(n.Populations)
	sol := &Solution{
		Throughput:  make([]float64, nk),
		CycleTime:   make([]float64, nk),
		Residence:   make([][]float64, nc),
		QueueLen:    make([]float64, nc),
		Utilization: make([]float64, nc),
	}
	for c := 0; c < nc; c++ {
		sol.Residence[c] = make([]float64, nk)
		copy(sol.Residence[c], resid[c])
		sol.QueueLen[c] = finalQ[c]
	}
	for k := 0; k < nk; k++ {
		sol.Throughput[k] = x[k]
		if x[k] > 0 {
			sol.CycleTime[k] = float64(n.Populations[k]) / x[k]
		}
	}
	for c := 0; c < nc; c++ {
		var u float64
		for k := 0; k < nk; k++ {
			u += x[k] * n.Demands[c][k]
		}
		if n.Kinds[c] == MultiServer {
			u /= float64(n.serversAt(c))
		}
		sol.Utilization[c] = u
	}
	return sol, nil
}

// SolveApprox runs the Schweitzer–Bard approximate MVA: the arrival
// theorem's Q(N - e_k) is approximated by scaling the chain-k component of
// Q(N), then iterated to a fixed point. tol bounds the relative change in
// queue lengths; maxIter caps the iterations.
func SolveApprox(n *Network, tol float64, maxIter int) (*Solution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	nc := len(n.Kinds)
	nk := len(n.Populations)

	// qck[c][k]: chain-k mean population at center c. Initialize evenly
	// over centers where the chain has demand.
	qck := make([][]float64, nc)
	for c := range qck {
		qck[c] = make([]float64, nk)
	}
	for k := 0; k < nk; k++ {
		cnt := 0
		for c := 0; c < nc; c++ {
			if n.Demands[c][k] > 0 {
				cnt++
			}
		}
		if cnt == 0 && n.Populations[k] > 0 {
			return nil, fmt.Errorf("mva: chain %d has zero total demand", k)
		}
		for c := 0; c < nc; c++ {
			if n.Demands[c][k] > 0 {
				qck[c][k] = float64(n.Populations[k]) / float64(cnt)
			}
		}
	}

	resid := make([][]float64, nc)
	for c := range resid {
		resid[c] = make([]float64, nk)
	}
	x := make([]float64, nk)

	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for k := 0; k < nk; k++ {
			pop := float64(n.Populations[k])
			if pop == 0 {
				continue
			}
			var cycle float64
			for c := 0; c < nc; c++ {
				d := n.Demands[c][k]
				if d == 0 {
					resid[c][k] = 0
					continue
				}
				switch n.Kinds[c] {
				case Delay:
					resid[c][k] = d
				default:
					// Schweitzer: Q_c(N - e_k) ≈ Q_c(N) - q_ck/N_k.
					var q float64
					for kk := 0; kk < nk; kk++ {
						q += qck[c][kk]
					}
					q -= qck[c][k] / pop
					if n.Kinds[c] == MultiServer {
						m := float64(n.serversAt(c))
						resid[c][k] = d/m*(1+q) + d*(m-1)/m
					} else {
						resid[c][k] = d * (1 + q)
					}
				}
				cycle += resid[c][k]
			}
			x[k] = pop / cycle
		}
		for c := 0; c < nc; c++ {
			for k := 0; k < nk; k++ {
				nq := x[k] * resid[c][k]
				d := math.Abs(nq - qck[c][k])
				if ref := math.Abs(qck[c][k]) + 1e-12; d/ref > maxDelta {
					maxDelta = d / ref
				}
				qck[c][k] = nq
			}
		}
		if maxDelta < tol {
			break
		}
	}

	finalQ := make([]float64, nc)
	for c := 0; c < nc; c++ {
		for k := 0; k < nk; k++ {
			finalQ[c] += qck[c][k]
		}
	}
	return n.finish(finalQ, x, resid)
}
