package carat

import (
	"carat/internal/testbed"
)

// TraceEvent is one protocol event from a traced simulation run: lock
// acquisitions and waits, deadlock victim selections, rollbacks, two-phase
// commit steps, transaction outcomes and — under WithFaults, WithResilience
// or WithReplication — site crashes, restarts, timeout aborts, retry and
// admission decisions, and replica traffic. Times are simulation
// milliseconds.
type TraceEvent struct {
	TimeMS float64
	// Txn is the global transaction id, or -1 for site events (crash,
	// restart, admission-shed).
	Txn  int64
	Type TxnType
	Node int
	// Event is one of: begin, lock-wait, lock-grant, deadlock-victim,
	// rollback, prepare-ack, force-commit-record, slave-commit,
	// release-locks, committed, aborted, crash, restart, timeout-abort,
	// abandon, admission-shed, probe-retransmit, retry-backoff,
	// failover-read, replica-apply, validation-abort (OCC commit-time
	// validation failures), net-hop (one message on the shared fabric;
	// scale configurations only).
	Event   string
	Granule int // lock events only; -1 otherwise
}

// SimulateWithTrace runs the simulator like Simulate while streaming every
// protocol event to fn. Tracing slows long runs; it is intended for
// protocol inspection and debugging.
func SimulateWithTrace(w Workload, opts SimOptions, fn func(TraceEvent)) (*Measurement, error) {
	e := opts.fill()
	cfg := w.w.TestbedConfig(e.Seed, e.Warmup, e.Duration)
	cfg.Trace = func(ev testbed.TraceEvent) {
		fn(TraceEvent{
			TimeMS:  ev.T,
			Txn:     ev.Txn,
			Type:    TxnType(ev.Kind.String()),
			Node:    int(ev.Node),
			Event:   ev.Ev.String(),
			Granule: ev.Granule,
		})
	}
	sys, err := testbed.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sys.Run()
	return measurementFrom(res), nil
}
