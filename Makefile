# Developer entry points. Everything here is plain Go tooling — no extra
# dependencies.

GO ?= go
BENCH_FILE := BENCH_$(shell date +%F).json

.PHONY: all build test race vet bench chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race smoke list mirrors the CI race job.
race:
	$(GO) test -race \
		-run 'TestParallelSweepSmoke|TestSweepDeterministicAcrossWorkerCounts|TestFaultSweepDeterministicAcrossWorkerCounts|TestFaultRunDeterministic|TestPrepareWindowCrashResolvesInDoubt|TestProbeRetransmissionDeterministicAcrossWorkerCounts|TestReplicatedSweepDeterministicAcrossWorkerCounts|TestReplicatedRunDeterministic|TestCapacitySweepDeterministicAcrossWorkerCounts|TestOpenRunDeterministic' \
		./internal/experiment/ ./internal/testbed/

vet:
	$(GO) vet ./...

# Record a benchmark baseline for perf PRs to diff against: the whole -bench
# suite with allocation stats, one iteration per benchmark, as a JSON event
# stream in BENCH_<date>.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json ./... | tee $(BENCH_FILE)

# The chaos audits CI runs: randomized fault plans, unreplicated and R=2.
chaos:
	$(GO) test -run 'TestChaosAuditClean|TestAuditorCleanOnFaultyRun|TestReplicatedChaosAuditClean|TestReplicatedFaultsAuditClean|TestOpenChaosAuditClean' -v \
		./internal/experiment/ ./internal/testbed/
