# Developer entry points. Everything here is plain Go tooling — no extra
# dependencies.

GO ?= go
BENCH_FILE := BENCH_$(shell date +%F).json
# The committed benchmark baseline the regression gate diffs against.
BASELINE ?= BENCH_2026-08-08.json

.PHONY: all build test race vet bench benchdiff chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race smoke list mirrors the CI race job.
race:
	$(GO) test -race \
		-run 'TestParallelSweepSmoke|TestSweepDeterministicAcrossWorkerCounts|TestFaultSweepDeterministicAcrossWorkerCounts|TestFaultRunDeterministic|TestPrepareWindowCrashResolvesInDoubt|TestProbeRetransmissionDeterministicAcrossWorkerCounts|TestReplicatedSweepDeterministicAcrossWorkerCounts|TestReplicatedRunDeterministic|TestCapacitySweepDeterministicAcrossWorkerCounts|TestOpenRunDeterministic|TestPartitionSweepDeterministicAcrossWorkerCounts|TestPartitionRunDeterministic|TestSharedFaultPlanNotMutated|TestCCSweepDeterministicAcrossWorkerCounts|TestScaleSweepDeterministicAcrossWorkerCounts|TestQueCCNoDeadlocksNoProbeTraffic|TestNoProbeStateOutsideDetection' \
		./internal/experiment/ ./internal/testbed/

vet:
	$(GO) vet ./...

# Record a benchmark baseline for perf PRs to diff against: the whole -bench
# suite with allocation stats as a JSON event stream in BENCH_<date>.json.
# Three iterations per benchmark: single-shot numbers swing ±10% run to run,
# which is useless against a 20% regression gate; 3x keeps the suite under a
# few minutes while averaging most of that noise away.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 3x -json ./... | tee $(BENCH_FILE)

# Benchmark-regression gate: re-run the two kernel-gated benchmarks at HEAD
# and fail if either is >20% slower than the committed $(BASELINE). CI runs
# this on every push; run it locally before perf-sensitive PRs.
benchdiff:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulateMB8$$|BenchmarkCapacitySweep$$' -benchmem -benchtime 3x -json . > bench_head.json
	$(GO) run ./cmd/benchdiff -old $(BASELINE) -new bench_head.json

# The chaos audits CI runs: randomized fault plans — unreplicated, R=2,
# R=2 with scheduled network partitions (the split-brain audit), and one
# audit per alternative concurrency-control paradigm (QueCC, OCC).
chaos:
	$(GO) test -run 'TestChaosAuditClean|TestAuditorCleanOnFaultyRun|TestReplicatedChaosAuditClean|TestReplicatedFaultsAuditClean|TestOpenChaosAuditClean|TestPartitionChaosAuditClean|TestPartitionReplicatedAuditClean|TestQueCCChaosAuditClean|TestOCCChaosAuditClean|TestScaleChaosAuditClean' -v \
		./internal/experiment/ ./internal/testbed/
